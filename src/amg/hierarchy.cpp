#include "amg/hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.hpp"

#include "amg/cache.hpp"
#include "amg/charges.hpp"
#include "amg/coarsen.hpp"
#include "amg/interp.hpp"
#include "amg/rap.hpp"
#include "common/error.hpp"
#include "perf/purity.hpp"

namespace exw::amg {

namespace {

/// One coarsening round: S -> PMIS -> P. Returns false if coarsening
/// stalled (no F points / empty coarse grid).
bool coarsen_once(const linalg::ParCsr& a, const AmgConfig& cfg,
                  std::uint64_t seed, linalg::ParCsr& p_out,
                  GlobalIndex& coarse_size) {
  const Strength s = compute_strength(a, cfg.strong_threshold);
  const Coarsening c = pmis(a, s, seed);
  coarse_size = c.coarse_size();
  if (coarse_size == GlobalIndex{0} || coarse_size >= a.global_rows()) {
    return false;
  }
  p_out = build_interpolation(a, s, c, cfg);
  return true;
}

}  // namespace

AmgHierarchy::AmgHierarchy(const linalg::ParCsr& a, AmgConfig cfg,
                           bool freeze_replay)
    : cfg_(cfg), frozen_(freeze_replay) {
  setup(a);
}

AmgHierarchy::~AmgHierarchy() = default;

void AmgHierarchy::setup(const linalg::ParCsr& a) {
  par::Runtime& rt = a.runtime();
  levels_.emplace_back();
  levels_.back().a = a;

  std::uint64_t seed = cfg_.pmis_seed;
  while (checked_narrow<int>(levels_.size()) < cfg_.max_levels &&
         levels_.back().a.global_rows() > cfg_.max_coarse_size) {
    AmgLevel& lvl = levels_.back();
    const int level_index = checked_narrow<int>(levels_.size()) - 1;
    const bool aggressive = level_index < cfg_.agg_levels;

    linalg::ParCsr p1;
    GlobalIndex n1{0};
    seed = hash64(seed + 1);
    if (!coarsen_once(lvl.a, cfg_, seed, p1, n1)) {
      break;
    }
    // When freezing, record the value-replay structure of the *final* RAP
    // for this transition (galerkin_rap resets the record at entry, so the
    // aggressive path's second product simply overwrites the first).
    RapRecord record;
    RapRecord* rec = frozen_ ? &record : nullptr;
    linalg::ParCsr a1 = galerkin_rap(lvl.a, p1, cfg_.spgemm, rec);

    if (aggressive && a1.global_rows() > cfg_.max_coarse_size) {
      // Second stage: coarsen the first-stage grid again and combine the
      // interpolations (P = P1 * P2) — distance-2 coarsening with
      // two-stage interpolation.
      linalg::ParCsr p2;
      GlobalIndex n2{0};
      seed = hash64(seed + 2);
      if (coarsen_once(a1, cfg_, seed, p2, n2)) {
        p1 = par_matmat(p1, p2, cfg_.spgemm);
        truncate_interpolation(p1, cfg_.pmax, cfg_.trunc_factor);
        a1 = galerkin_rap(lvl.a, p1, cfg_.spgemm, rec);
      }
    }
    if (frozen_) {
      replays_.push_back(freeze_level_replay(rt, std::move(record),
                                             a1.rows()));
    }

    lvl.p = std::move(p1);
    lvl.has_p = true;
    levels_.emplace_back();
    levels_.back().a = std::move(a1);
  }

  // Mixed-precision hierarchy (DESIGN.md §16): the whole setup above ran
  // in FP64; demote every level's operator and transfer in one pass here,
  // so the stored hierarchy is round(FP64 Galerkin chain) — the same
  // values refresh_values reproduces. Must happen before the smoothers
  // are built: their diagonal splits capture the demoted values.
  if (cfg_.precision == Precision::kF32) {
    for (auto& lvl : levels_) {
      lvl.a.demote_values();
      if (lvl.has_p) {
        lvl.p.demote_values();
      }
    }
  }

  // Smoothers + work vectors per level; dense LU on the coarsest.
  for (auto& lvl : levels_) {
    lvl.smoother = std::make_unique<Smoother>(lvl.a, cfg_.smoother,
                                              cfg_.inner_sweeps,
                                              cfg_.jacobi_weight);
    lvl.x = std::make_unique<linalg::ParVector>(rt, lvl.a.rows());
    lvl.b = std::make_unique<linalg::ParVector>(rt, lvl.a.rows());
    lvl.r = std::make_unique<linalg::ParVector>(rt, lvl.a.rows());
    if (cfg_.precision == Precision::kF32) {
      lvl.x->set_value_precision(Precision::kF32);
      lvl.b->set_value_precision(Precision::kF32);
      lvl.r->set_value_precision(Precision::kF32);
    }
  }
  const auto& coarsest = levels_.back().a;
  coarse_lu_ = sparse::DenseLu(coarsest.to_serial());
  // Rebuild-only cost: refresh_values never re-factorizes (amg/charges.hpp).
  detail::charge_dense_lu(rt.tracer(), coarsest.global_rows().value());
}

EXW_WARM_FN
void AmgHierarchy::refresh_values(const linalg::ParCsr& a) {
  EXW_PURITY_REGION("amg-refresh");
  EXW_REQUIRE(frozen_,
              "amg hierarchy: refresh_values requires freeze_replay setup");
  EXW_REQUIRE(!levels_.empty(), "amg hierarchy: refresh before setup");
  linalg::ParCsr& fine = levels_.front().a;
  EXW_REQUIRE(a.global_rows() == fine.global_rows() &&
                  a.nranks() == fine.nranks(),
              "amg hierarchy plan is stale: fine matrix shape changed");

  // Level 0: copy the new values into the retained fine operator (one
  // streaming kernel per rank; structure fingerprint checked first).
  par::Runtime& rt = a.runtime();
  rt.parallel_for_ranks([&](RankId r) {
    const linalg::RankBlock& src = a.block(r);
    linalg::RankBlock& dst = fine.block_mut(r);
    EXW_REQUIRE(src.diag.nnz() == dst.diag.nnz() &&
                    src.offd.nnz() == dst.offd.nnz() &&
                    src.col_map.size() == dst.col_map.size(),
                "amg hierarchy plan is stale: fine-level structure changed");
    const auto dspan = src.diag.vals().raw();
    const auto ospan = src.offd.vals().raw();
    std::copy(dspan.begin(), dspan.end(), dst.diag.vals_vec().begin());
    std::copy(ospan.begin(), ospan.end(), dst.offd.vals_vec().begin());
    detail::charge_value_stream(rt.tracer(), r,
                                src.diag.nnz() + src.offd.nnz());
  });

  // Replay each transition: level l's refreshed operator feeds l+1.
  // In mixed mode the chain runs in FP64 — replay t reads the fresh FP64
  // values replay t-1 just wrote, not the rounded stores — and every
  // level demotes once at the end. The FP32 storage invariant is broken
  // only inside this call, and the result is bitwise-identical to a cold
  // rebuild at the same values (round of the same FP64 Galerkin chain).
  for (std::size_t t = 0; t < replays_.size(); ++t) {
    replay_level(rt, *replays_[t], levels_[t].a, levels_[t + 1].a);
  }
  if (cfg_.precision == Precision::kF32) {
    for (auto& lvl : levels_) {
      lvl.a.demote_values();
    }
  }

  // Re-split the smoothers against the refreshed operators. The coarse
  // LU keeps its factorization (rebuild-only O(n^3); see class comment).
  for (auto& lvl : levels_) {
    lvl.smoother->refresh_values();
  }
}

void AmgHierarchy::vcycle(const linalg::ParVector& b, linalg::ParVector& x) {
  cycle_level(0, b, x);
}

void AmgHierarchy::cycle_level(std::size_t l, const linalg::ParVector& b,
                               linalg::ParVector& x) {
  AmgLevel& lvl = levels_[l];
  if (l + 1 == levels_.size() || !lvl.has_p) {
    coarse_solve(b, x);
    return;
  }
  AmgLevel& next = levels_[l + 1];

  lvl.smoother->apply(b, x, cfg_.pre_sweeps);
  lvl.a.residual(b, x, *lvl.r);
  // Restrict with R = P^T.
  lvl.p.matvec_transpose(*lvl.r, *next.b);
  next.x->fill(0.0);
  cycle_level(l + 1, *next.b, *next.x);
  // Prolong and correct.
  lvl.p.matvec(*next.x, *lvl.r);
  x.axpy(1.0, *lvl.r);
  lvl.smoother->apply(b, x, cfg_.post_sweeps);
}

void AmgHierarchy::coarse_solve(const linalg::ParVector& b,
                                linalg::ParVector& x) {
  // Gather, solve directly, scatter. Charged as one small collective plus
  // an O(n^2) triangular-solve kernel on one rank. A mixed hierarchy
  // gathers/scatters float payloads (the vectors are FP32-tagged), so the
  // collective bytes halve; the LU back-substitution itself stays FP64.
  par::Runtime& rt = levels_.back().a.runtime();
  const auto n = static_cast<double>(b.global_size().value());
  rt.tracer().collective(n * bytes_of(b.value_precision()));
  RealVector rhs = b.gather();
  coarse_lu_.solve_in_place(rhs);
  rt.tracer().kernel(RankId{0}, 2.0 * n * n, 8.0 * n * n);
  rt.tracer().collective(n * bytes_of(x.value_precision()));
  x.scatter(rhs);
}

double AmgHierarchy::grid_complexity() const {
  EXW_REQUIRE(!levels_.empty(), "amg hierarchy: complexity before setup");
  double sum = 0;
  for (const auto& lvl : levels_) {
    sum += static_cast<double>(lvl.a.global_rows().value());
  }
  return sum / static_cast<double>(levels_.front().a.global_rows().value());
}

double AmgHierarchy::operator_complexity() const {
  EXW_REQUIRE(!levels_.empty(), "amg hierarchy: complexity before setup");
  double sum = 0;
  for (const auto& lvl : levels_) {
    sum += static_cast<double>(lvl.a.global_nnz().value());
  }
  return sum / static_cast<double>(levels_.front().a.global_nnz().value());
}

std::string AmgHierarchy::describe() const {
  std::ostringstream os;
  os << "AMG hierarchy: " << levels_.size() << " levels\n";
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto& a = levels_[l].a;
    os << "  level " << l << ": rows=" << a.global_rows()
       << " nnz=" << a.global_nnz() << " avg_row="
       << static_cast<double>(a.global_nnz().value()) /
              static_cast<double>(std::max<std::int64_t>(1, a.global_rows().value()))
       << "\n";
  }
  os << "  grid complexity " << grid_complexity() << ", operator complexity "
     << operator_complexity();
  return os.str();
}

}  // namespace exw::amg
