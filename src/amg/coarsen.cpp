#include "amg/coarsen.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace exw::amg {

namespace {

/// Flattened per-rank adjacency over the symmetrized strong graph, in
/// global ids.
struct StrongGraph {
  // [rank] -> CSR over local rows.
  std::vector<std::vector<std::size_t>> xadj;
  std::vector<std::vector<GlobalIndex>> adj;       ///< symmetrized (MIS test)
  std::vector<std::vector<std::size_t>> dep_xadj;  ///< S-row only (F assignment)
  std::vector<std::vector<GlobalIndex>> dep_adj;
  std::vector<double> boundary_degree;  ///< per rank, for comm charging
};

StrongGraph build_strong_graph(const linalg::ParCsr& a, const Strength& s) {
  const int nranks = a.nranks();
  const auto& rows = a.rows();
  StrongGraph g;
  g.xadj.resize(static_cast<std::size_t>(nranks));
  g.adj.resize(static_cast<std::size_t>(nranks));
  g.dep_xadj.resize(static_cast<std::size_t>(nranks));
  g.dep_adj.resize(static_cast<std::size_t>(nranks));
  g.boundary_degree.assign(static_cast<std::size_t>(nranks), 0.0);

  // Per-local-row neighbor collection (dependencies = S row entries), plus
  // reversed edges for symmetrization.
  std::vector<std::vector<std::vector<GlobalIndex>>> nbr(
      static_cast<std::size_t>(nranks));
  std::vector<std::vector<std::vector<GlobalIndex>>> dep(
      static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    nbr[static_cast<std::size_t>(r)].resize(
        static_cast<std::size_t>(rows.local_size(r)));
    dep[static_cast<std::size_t>(r)].resize(
        static_cast<std::size_t>(rows.local_size(r)));
  }
  auto add_reverse = [&](GlobalIndex to, GlobalIndex from) {
    const RankId owner = rows.rank_of(to);
    nbr[static_cast<std::size_t>(owner)]
       [static_cast<std::size_t>(rows.to_local(owner, to))].push_back(from);
  };

  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& b = a.block(r);
    const GlobalIndex row0 = rows.first_row(r);
    for (LocalIndex i{0}; i < b.diag.nrows(); ++i) {
      const GlobalIndex gi = row0 + i.value();
      auto& ni = nbr[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      auto& di = dep[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
        if (!s.strong_diag(r, static_cast<std::size_t>(k))) continue;
        const GlobalIndex gj =
            row0 + b.diag.cols()[k].value();
        ni.push_back(gj);
        di.push_back(gj);
        add_reverse(gj, gi);
      }
      for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
        if (!s.strong_offd(r, static_cast<std::size_t>(k))) continue;
        const GlobalIndex gj =
            b.col_map[static_cast<std::size_t>(
                b.offd.cols()[k])];
        ni.push_back(gj);
        di.push_back(gj);
        add_reverse(gj, gi);
        g.boundary_degree[static_cast<std::size_t>(r)] += 1.0;
      }
    }
  }

  for (RankId r{0}; r.value() < nranks; ++r) {
    auto& xa = g.xadj[static_cast<std::size_t>(r)];
    auto& ad = g.adj[static_cast<std::size_t>(r)];
    auto& dxa = g.dep_xadj[static_cast<std::size_t>(r)];
    auto& dad = g.dep_adj[static_cast<std::size_t>(r)];
    xa.push_back(0);
    dxa.push_back(0);
    for (auto& list : nbr[static_cast<std::size_t>(r)]) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      ad.insert(ad.end(), list.begin(), list.end());
      xa.push_back(ad.size());
    }
    for (auto& list : dep[static_cast<std::size_t>(r)]) {
      dad.insert(dad.end(), list.begin(), list.end());
      dxa.push_back(dad.size());
    }
  }
  return g;
}

}  // namespace

Coarsening pmis(const linalg::ParCsr& a, const Strength& s,
                std::uint64_t seed) {
  const int nranks = a.nranks();
  const auto& rows = a.rows();
  auto& tracer = a.runtime().tracer();
  const StrongGraph graph = build_strong_graph(a, s);

  // Measures: w(i) = (#strongly-influenced by i) + rand(global id). The
  // influence count is the symmetrized degree minus the dependency degree
  // would undercount; compute it directly from reversed edges: it equals
  // |{j : S_ji}| which we obtain as (symmetrized adj) filtered against
  // dependencies is overkill — we instead count during graph build via the
  // reverse inserts, recovered here from degrees.
  const auto n_global = static_cast<std::size_t>(rows.global_size());
  std::vector<double> w(n_global, 0.0);
  std::vector<CF> state(n_global, CF::kUndecided);

  // Influence count: number of reverse edges delivered to each node. The
  // symmetrized neighbor list contains (deps ∪ influencers); recompute
  // influencers exactly by streaming dependencies once more.
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& dxa = graph.dep_xadj[static_cast<std::size_t>(r)];
    const auto& dad = graph.dep_adj[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k < dad.size(); ++k) {
      w[static_cast<std::size_t>(dad[k])] += 1.0;
    }
    (void)dxa;
  }
  for (std::size_t g = 0; g < n_global; ++g) {
    // Isolated / purely-weak rows (e.g. Dirichlet identity rows) become
    // F-points immediately: nothing interpolates from them and the
    // smoother resolves them exactly.
    const RankId r = rows.rank_of(checked_narrow<GlobalIndex>(g));
    const auto li = static_cast<std::size_t>(
        rows.to_local(r, checked_narrow<GlobalIndex>(g)));
    const auto& xa = graph.xadj[static_cast<std::size_t>(r)];
    const bool isolated = xa[li + 1] == xa[li];
    if (isolated && w[g] == 0.0) {
      state[g] = CF::kFine;
      continue;
    }
    w[g] += uniform01(seed, g);
  }
  tracer.collective(sizeof(double));  // measure reduction

  Coarsening out;
  out.cf.resize(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    out.cf[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(rows.local_size(r)), CF::kUndecided);
  }

  bool any_undecided = true;
  while (any_undecided) {
    out.rounds += 1;
    // Charge the boundary (w, cf) exchange for this round.
    for (RankId r{0}; r.value() < nranks; ++r) {
      const double deg = graph.boundary_degree[static_cast<std::size_t>(r)];
      if (deg > 0) {
        tracer.kernel(r, deg, deg * (sizeof(double) + 1.0));
      }
    }
    tracer.collective(sizeof(GlobalIndex));  // "any undecided" reduction

    // Phase 1: local maxima of w over undecided strong neighborhoods
    // become C-points (one independent-set round of Luby's algorithm).
    std::vector<GlobalIndex> new_c;
    for (RankId r{0}; r.value() < nranks; ++r) {
      const GlobalIndex row0 = rows.first_row(r);
      const auto& xa = graph.xadj[static_cast<std::size_t>(r)];
      const auto& ad = graph.adj[static_cast<std::size_t>(r)];
      for (LocalIndex i{0}; i < rows.local_size(r); ++i) {
        const auto gi = static_cast<std::size_t>(row0 + i.value());
        if (state[gi] != CF::kUndecided) continue;
        bool is_max = true;
        for (std::size_t k = xa[static_cast<std::size_t>(i)];
             k < xa[static_cast<std::size_t>(i) + 1]; ++k) {
          const auto gj = static_cast<std::size_t>(ad[k]);
          if (state[gj] == CF::kUndecided && w[gj] >= w[gi]) {
            is_max = false;
            break;
          }
        }
        if (is_max) {
          new_c.push_back(checked_narrow<GlobalIndex>(gi));
        }
      }
      tracer.kernel(r, static_cast<double>(xa.back()),
                    static_cast<double>(xa.back()) * sizeof(GlobalIndex));
    }
    for (GlobalIndex c : new_c) {
      state[static_cast<std::size_t>(c)] = CF::kCoarse;
    }

    // Phase 2: undecided points strongly depending on a C-point become F.
    any_undecided = false;
    for (RankId r{0}; r.value() < nranks; ++r) {
      const GlobalIndex row0 = rows.first_row(r);
      const auto& dxa = graph.dep_xadj[static_cast<std::size_t>(r)];
      const auto& dad = graph.dep_adj[static_cast<std::size_t>(r)];
      for (LocalIndex i{0}; i < rows.local_size(r); ++i) {
        const auto gi = static_cast<std::size_t>(row0 + i.value());
        if (state[gi] != CF::kUndecided) continue;
        for (std::size_t k = dxa[static_cast<std::size_t>(i)];
             k < dxa[static_cast<std::size_t>(i) + 1]; ++k) {
          if (state[static_cast<std::size_t>(dad[k])] == CF::kCoarse) {
            state[gi] = CF::kFine;
            break;
          }
        }
        if (state[gi] == CF::kUndecided) {
          any_undecided = true;
        }
      }
    }
    EXW_REQUIRE(out.rounds < 1000, "PMIS failed to converge");
  }

  // Coarse numbering: per-rank contiguous, in local row order.
  std::vector<GlobalIndex> counts(static_cast<std::size_t>(nranks), GlobalIndex{0});
  out.coarse_id.resize(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    const GlobalIndex row0 = rows.first_row(r);
    auto& cf = out.cf[static_cast<std::size_t>(r)];
    for (LocalIndex i{0}; i < rows.local_size(r); ++i) {
      cf[static_cast<std::size_t>(i)] =
          state[static_cast<std::size_t>(row0 + i.value())];
      if (cf[static_cast<std::size_t>(i)] == CF::kCoarse) {
        counts[static_cast<std::size_t>(r)] += 1;
      }
    }
  }
  out.coarse_rows = par::RowPartition::from_counts(counts);
  for (RankId r{0}; r.value() < nranks; ++r) {
    auto& ids = out.coarse_id[static_cast<std::size_t>(r)];
    ids.assign(static_cast<std::size_t>(rows.local_size(r)), kInvalidGlobal);
    GlobalIndex next = out.coarse_rows.first_row(r);
    for (LocalIndex i{0}; i < rows.local_size(r); ++i) {
      if (out.cf[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] ==
          CF::kCoarse) {
        ids[static_cast<std::size_t>(i)] = next++;
      }
    }
  }
  return out;
}

}  // namespace exw::amg
