#pragma once
/// \file smoothers.hpp
/// Relaxation methods of paper §4.2.
///
/// The hybrid Gauss-Seidel family: ranks exchange boundary values once,
/// then relax independently on their local rows (off-rank couplings use
/// the frozen halo — Jacobi across ranks, GS within). The *two-stage* GS
/// replaces the sequential local triangular solve with `s` inner
/// Jacobi-Richardson sweeps (Eqs. 5-7), i.e. a degree-s Neumann expansion
/// of (L+D)^-1 — every step is a sparse product, so the smoother is
/// massively parallel. SGS2 (Eqs. 11-14) is the symmetric two-stage
/// variant used to precondition the momentum GMRES solve; "two outer and
/// two inner iterations often leads to rapid convergence in less than
/// five preconditioned GMRES iterations."

#include <memory>
#include <vector>

#include "amg/config.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"

namespace exw::amg {

/// Gershgorin bound on the largest eigenvalue of Dinv A (used to set the
/// Chebyshev interval; a few power iterations would be the alternative).
Real estimate_eig_max(const linalg::ParCsr& a);

/// Per-rank L/D/U split of the diag block, shared by the GS variants.
struct LduSplit {
  std::vector<sparse::Csr> lower;   ///< strictly lower triangles
  std::vector<sparse::Csr> upper;   ///< strictly upper triangles
  std::vector<RealVector> dinv;     ///< 1 / a_ii
  std::vector<RealVector> l1_dinv;  ///< 1 / (a_ii + sum_j |a_ij, j off-rank|)

  static LduSplit build(const linalg::ParCsr& a);

  /// Refill lower/upper/dinv/l1_dinv values in place from new values of
  /// `a` (same structure as the build; throws otherwise). The warm half
  /// of the hierarchy cache: one streaming pass, no allocation.
  void refresh_values(const linalg::ParCsr& a);
};

class Smoother {
 public:
  Smoother(const linalg::ParCsr& a, SmootherType type, int inner_sweeps,
           Real jacobi_weight);

  SmootherType type() const { return type_; }

  /// Refresh the L/D/U split (and the Chebyshev eigenvalue bound) from
  /// the matrix's current values; the structure must be unchanged.
  void refresh_values();

  /// Apply `sweeps` relaxation steps to A x = b in place.
  void apply(const linalg::ParVector& b, linalg::ParVector& x,
             int sweeps) const;

  /// z = M^-1 r with x starting from zero (preconditioner application).
  void apply_zero(const linalg::ParVector& r, linalg::ParVector& z,
                  int sweeps) const;

  /// Fused multi-RHS relaxation: every lane relaxed as apply() would
  /// relax it alone (bitwise-identical per lane), with the sparse
  /// structure of each sweep read once for all lanes. Jacobi/L1-Jacobi
  /// and SGS2 have native fused sweeps; the remaining types fall back to
  /// per-lane application through scratch vectors.
  void apply_multi(const linalg::ParMultiVector& b, linalg::ParMultiVector& x,
                   int sweeps) const;
  void apply_zero_multi(const linalg::ParMultiVector& r,
                        linalg::ParMultiVector& z, int sweeps) const;

 private:
  void sweep_jacobi(const linalg::ParVector& b, linalg::ParVector& x,
                    bool l1) const;
  void sweep_hybrid_gs(const linalg::ParVector& b, linalg::ParVector& x) const;
  void sweep_two_stage(const linalg::ParVector& b, linalg::ParVector& x) const;
  void sweep_sgs2(const linalg::ParVector& b, linalg::ParVector& x) const;
  void sweep_chebyshev(const linalg::ParVector& b, linalg::ParVector& x) const;

  void sweep_jacobi_multi(const linalg::ParMultiVector& b,
                          linalg::ParMultiVector& x, bool l1) const;
  void sweep_sgs2_multi(const linalg::ParMultiVector& b,
                        linalg::ParMultiVector& x) const;

  /// Inner Jacobi-Richardson approximation of (L+D)^-1 rhs (Eqs. 5-7);
  /// `rhs` and the result are rank-local arrays.
  void jr_lower(RankId r, const RealVector& rhs, RealVector& g) const;
  /// Same for (D+U)^-1.
  void jr_upper(RankId r, const RealVector& rhs, RealVector& g) const;
  /// Fused-lane variants: rhs/g are SoA blocks of `lanes` planes of
  /// rank-local size; L/U structure is read once per sweep for all lanes.
  void jr_lower_multi(RankId r, const RealVector& rhs, std::size_t lanes,
                      RealVector& g) const;
  void jr_upper_multi(RankId r, const RealVector& rhs, std::size_t lanes,
                      RealVector& g) const;

  const linalg::ParCsr* a_;
  SmootherType type_;
  int inner_sweeps_;
  Real weight_;
  LduSplit ldu_;
  Real eig_max_ = 0;  ///< Chebyshev: estimated largest eigenvalue of Dinv A
};

}  // namespace exw::amg
