#include "amg/rap.hpp"

#include <algorithm>

#include "assembly/global.hpp"
#include "common/error.hpp"
#include "sparse/prim.hpp"

namespace exw::amg {

namespace {

/// Sparse row accumulator over global coarse columns.
class RowAccumulator {
 public:
  void clear() { entries_.clear(); }

  void add(GlobalIndex col, Real v) { entries_.emplace_back(col, v); }

  /// Merge duplicates (sort-based; rows are short). The sort is *stable*
  /// so ties keep push order: the addend order of each merged sum is then
  /// a pure function of the push sequence, which is what lets RapRecord
  /// freeze it and replay it bitwise.
  const std::vector<std::pair<GlobalIndex, Real>>& merged() {
    std::stable_sort(entries_.begin(), entries_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t out = 0;
    for (std::size_t k = 0; k < entries_.size();) {
      GlobalIndex col = entries_[k].first;
      Real v = 0;
      while (k < entries_.size() && entries_[k].first == col) {
        v += entries_[k].second;
        ++k;
      }
      entries_[out++] = {col, v};
    }
    entries_.resize(out);
    return entries_;
  }

 private:
  std::vector<std::pair<GlobalIndex, Real>> entries_;
};

/// Freeze the reduction Coo::normalize() is about to perform on `coo`:
/// group the per-triple (left, right) term slots by the stable (row, col)
/// sort permutation — exactly the permutation normalize() applies — so
/// each output entry's term list is reduce_by_key's addend order.
sparse::ProductPlan freeze_coo_reduction(
    const sparse::Coo& coo,
    const std::vector<std::pair<std::size_t, std::size_t>>& terms) {
  EXW_REQUIRE(coo.nnz() == terms.size(),
              "RAP record: one term per COO triple required");
  sparse::ProductPlan plan;
  const auto perm = sparse::prim::sort_permutation2(coo.rows, coo.cols);
  std::vector<std::size_t> ls, rs;
  for (std::size_t s = 0; s < perm.size();) {
    const GlobalIndex row = coo.rows[perm[s]];
    const GlobalIndex col = coo.cols[perm[s]];
    ls.clear();
    rs.clear();
    while (s < perm.size() && coo.rows[perm[s]] == row &&
           coo.cols[perm[s]] == col) {
      ls.push_back(terms[perm[s]].first);
      rs.push_back(terms[perm[s]].second);
      ++s;
    }
    plan.append(ls, rs);
  }
  return plan;
}

}  // namespace

linalg::ParCsr galerkin_rap(const linalg::ParCsr& a, const linalg::ParCsr& p,
                            sparse::SpGemmAlgo algo, RapRecord* record) {
  EXW_REQUIRE(a.global_cols() == p.global_rows(), "RAP shape mismatch");
  par::Runtime& rt = a.runtime();
  auto& tracer = rt.tracer();
  const int nranks = a.nranks();
  const auto& fine = a.rows();
  const auto& coarse = p.cols();

  if (record) {
    // assign() resets any previous recording — the aggressive-coarsening
    // path runs galerkin_rap twice per level and keeps only the last.
    record->ranks.assign(static_cast<std::size_t>(nranks), {});
    record->owned.assign(static_cast<std::size_t>(nranks), {});
    record->shared.assign(static_cast<std::size_t>(nranks), {});
  }
  // Per-triple (p_flat slot, AP entry) term pairs in COO push order,
  // grouped into ProductPlans after the triples are normalized below.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> owned_terms(
      static_cast<std::size_t>(nranks));
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> shared_terms(
      static_cast<std::size_t>(nranks));

  // Fetch external P rows for A's offd columns.
  std::vector<std::vector<GlobalIndex>> needed(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    needed[static_cast<std::size_t>(r)] = a.block(r).col_map;
  }
  const auto ext = fetch_external_rows(p, needed);

  // The sort-expand variant pays an extra sort of all partial products
  // (cuSPARSE-style); the hash variant streams them once. Model the
  // difference via the charge below.
  const double sort_penalty =
      algo == sparse::SpGemmAlgo::kSort ? 8.0 : 2.0;

  std::vector<sparse::Coo> owned(static_cast<std::size_t>(nranks));
  std::vector<sparse::Coo> shared(static_cast<std::size_t>(nranks));
  rt.parallel_for_ranks([&](RankId r) {
    const auto& ab = a.block(r);
    const auto& pb = p.block(r);
    const auto& er = ext[static_cast<std::size_t>(r)];
    const GlobalIndex pc0 = coarse.first_row(r);
    RowAccumulator ap_row;
    double products = 0;

    RapRecord::Rank* rec =
        record ? &record->ranks[static_cast<std::size_t>(r)] : nullptr;
    const std::size_t p_diag_nnz = pb.diag.nnz();
    const std::size_t p_offd_nnz = pb.offd.nnz();
    const std::size_t a_diag_nnz = ab.diag.nnz();
    if (rec) {
      rec->a_diag_nnz = a_diag_nnz;
      rec->a_offd_nnz = ab.offd.nnz();
      rec->ap.zero_init = true;  // RowAccumulator folds into an explicit 0
      auto& pf = rec->p_flat;
      pf.reserve(p_diag_nnz + p_offd_nnz + er.vals.size());
      pf.insert(pf.end(), pb.diag.vals().begin(), pb.diag.vals().end());
      pf.insert(pf.end(), pb.offd.vals().begin(), pb.offd.vals().end());
      pf.insert(pf.end(), er.vals.begin(), er.vals.end());
    }
    // Row-local recording scratch: one (a_flat, p_flat) slot pair per
    // partial product, in push order, keyed by the AP column.
    std::vector<GlobalIndex> term_cols;
    std::vector<std::pair<std::size_t, std::size_t>> terms;
    std::vector<std::size_t> ls, rs;

    // Emit P(local row li) as (global coarse col, val, p_flat slot).
    auto for_p_row = [&](LocalIndex li, auto&& fn) {
      for (EntryOffset k = pb.diag.row_begin(li); k < pb.diag.row_end(li); ++k) {
        fn(pc0 + pb.diag.cols()[k].value(),
           pb.diag.vals()[k], static_cast<std::size_t>(k.value()));
      }
      for (EntryOffset k = pb.offd.row_begin(li); k < pb.offd.row_end(li); ++k) {
        fn(pb.col_map[static_cast<std::size_t>(
               pb.offd.cols()[k])],
           pb.offd.vals()[k], p_diag_nnz + static_cast<std::size_t>(k.value()));
      }
    };

    for (LocalIndex i{0}; i < fine.local_size(r); ++i) {
      // AP(i, :) = sum_k A(i, k) P(k, :).
      ap_row.clear();
      term_cols.clear();
      terms.clear();
      for (EntryOffset k = ab.diag.row_begin(i); k < ab.diag.row_end(i); ++k) {
        const LocalIndex kc = ab.diag.cols()[k];
        const Real av = ab.diag.vals()[k];
        const auto a_slot = static_cast<std::size_t>(k.value());
        for_p_row(kc, [&](GlobalIndex col, Real pv, std::size_t p_slot) {
          ap_row.add(col, av * pv);
          if (rec) {
            term_cols.push_back(col);
            terms.emplace_back(a_slot, p_slot);
          }
          products += 1;
        });
      }
      for (EntryOffset k = ab.offd.row_begin(i); k < ab.offd.row_end(i); ++k) {
        const GlobalIndex gk =
            ab.col_map[static_cast<std::size_t>(
                ab.offd.cols()[k])];
        const Real av = ab.offd.vals()[k];
        const std::size_t ei = er.find(gk);
        if (ei == static_cast<std::size_t>(-1)) continue;
        const std::size_t a_slot =
            a_diag_nnz + static_cast<std::size_t>(k.value());
        for (std::size_t q = er.row_ptr[ei]; q < er.row_ptr[ei + 1]; ++q) {
          ap_row.add(er.cols[q], av * er.vals[q]);
          if (rec) {
            term_cols.push_back(er.cols[q]);
            terms.emplace_back(a_slot, p_diag_nnz + p_offd_nnz + q);
          }
          products += 1;
        }
      }
      const auto& ap = ap_row.merged();
      if (ap.empty()) continue;
      std::size_t ap_base = 0;
      if (rec) {
        // Group this row's terms by AP column with the same stable sort
        // merged() used: group t's term order is the accumulator's addend
        // order for entry ap[t].
        ap_base = rec->ap.outputs();
        const auto perm =
            sparse::prim::sort_permutation(term_cols, std::less<GlobalIndex>{});
        for (std::size_t s = 0; s < perm.size();) {
          const GlobalIndex col = term_cols[perm[s]];
          ls.clear();
          rs.clear();
          while (s < perm.size() && term_cols[perm[s]] == col) {
            ls.push_back(terms[perm[s]].first);
            rs.push_back(terms[perm[s]].second);
            ++s;
          }
          rec->ap.append(ls, rs);
        }
        EXW_ASSERT(rec->ap.outputs() - ap_base == ap.size());
      }
      // Outer product: triples (P(i, jc), AP(i, kc)).
      for_p_row(i, [&](GlobalIndex jc, Real pv, std::size_t p_slot) {
        const bool own = coarse.rank_of(jc) == r;
        auto& dest = own ? owned[static_cast<std::size_t>(r)]
                         : shared[static_cast<std::size_t>(r)];
        auto* term_dest =
            rec ? (own ? &owned_terms[static_cast<std::size_t>(r)]
                       : &shared_terms[static_cast<std::size_t>(r)])
                : nullptr;
        for (std::size_t m = 0; m < ap.size(); ++m) {
          dest.push(jc, ap[m].first, pv * ap[m].second);
          if (term_dest) term_dest->emplace_back(p_slot, ap_base + m);
          products += 1;
        }
      });
    }
    tracer.kernel(r, 2.0 * products,
                  sort_penalty * products * (sizeof(Real) + sizeof(GlobalIndex)));
  });

  // Reuse the paper's Algorithm 1 for the coarse operator.
  rt.parallel_for_ranks([&](RankId r) {
    auto& ow = owned[static_cast<std::size_t>(r)];
    auto& sh = shared[static_cast<std::size_t>(r)];
    if (record) {
      auto& rec = record->ranks[static_cast<std::size_t>(r)];
      rec.owned = freeze_coo_reduction(ow, owned_terms[static_cast<std::size_t>(r)]);
      rec.shared = freeze_coo_reduction(sh, shared_terms[static_cast<std::size_t>(r)]);
    }
    ow.normalize();
    sh.normalize();
    if (record) {
      auto& rec = record->ranks[static_cast<std::size_t>(r)];
      EXW_REQUIRE(rec.owned.outputs() == ow.nnz() &&
                      rec.shared.outputs() == sh.nnz(),
                  "RAP record does not match the normalized triples");
      record->owned[static_cast<std::size_t>(r)] = ow;
      record->shared[static_cast<std::size_t>(r)] = sh;
    }
  });
  return assembly::assemble_matrix(rt, coarse, coarse, owned, shared);
}

linalg::ParCsr par_matmat(const linalg::ParCsr& a, const linalg::ParCsr& b,
                          sparse::SpGemmAlgo algo) {
  EXW_REQUIRE(a.global_cols() == b.global_rows(), "matmat shape mismatch");
  par::Runtime& rt = a.runtime();
  auto& tracer = rt.tracer();
  const int nranks = a.nranks();
  const auto& mid = b.rows();
  const auto& out_cols = b.cols();

  std::vector<std::vector<GlobalIndex>> needed(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    needed[static_cast<std::size_t>(r)] = a.block(r).col_map;
  }
  const auto ext = fetch_external_rows(b, needed);
  const double sort_penalty = algo == sparse::SpGemmAlgo::kSort ? 8.0 : 2.0;

  std::vector<linalg::RankBlock> blocks(static_cast<std::size_t>(nranks));
  rt.parallel_for_ranks([&](RankId r) {
    const auto& ab = a.block(r);
    const auto& bb = b.block(r);
    const auto& er = ext[static_cast<std::size_t>(r)];
    const GlobalIndex row0 = a.rows().first_row(r);
    const GlobalIndex bc0 = out_cols.first_row(r);
    RowAccumulator acc;
    sparse::Coo coo;
    double products = 0;
    for (LocalIndex i{0}; i < a.rows().local_size(r); ++i) {
      acc.clear();
      for (EntryOffset k = ab.diag.row_begin(i); k < ab.diag.row_end(i); ++k) {
        const LocalIndex kc = ab.diag.cols()[k];
        const Real av = ab.diag.vals()[k];
        // kc is owned by r in b's row partition when partitions align;
        // they do by construction (a.cols() == b.rows()).
        for (EntryOffset q = bb.diag.row_begin(kc); q < bb.diag.row_end(kc); ++q) {
          acc.add(bc0 + bb.diag.cols()[q].value(),
                  av * bb.diag.vals()[q]);
          products += 1;
        }
        for (EntryOffset q = bb.offd.row_begin(kc); q < bb.offd.row_end(kc); ++q) {
          acc.add(bb.col_map[static_cast<std::size_t>(
                      bb.offd.cols()[q])],
                  av * bb.offd.vals()[q]);
          products += 1;
        }
      }
      for (EntryOffset k = ab.offd.row_begin(i); k < ab.offd.row_end(i); ++k) {
        const GlobalIndex gk =
            ab.col_map[static_cast<std::size_t>(
                ab.offd.cols()[k])];
        const Real av = ab.offd.vals()[k];
        const std::size_t ei = er.find(gk);
        if (ei == static_cast<std::size_t>(-1)) continue;
        for (std::size_t q = er.row_ptr[ei]; q < er.row_ptr[ei + 1]; ++q) {
          acc.add(er.cols[q], av * er.vals[q]);
          products += 1;
        }
      }
      for (const auto& [col, v] : acc.merged()) {
        coo.push(row0 + i.value(), col, v);
      }
    }
    tracer.kernel(r, 2.0 * products,
                  sort_penalty * products * (sizeof(Real) + sizeof(GlobalIndex)));
    blocks[static_cast<std::size_t>(r)] =
        assembly::split_diag_offd(coo, a.rows(), out_cols, r);
  });
  EXW_REQUIRE(mid.global_size() == a.global_cols(), "matmat partitions");
  return linalg::ParCsr(rt, a.rows(), out_cols, std::move(blocks));
}

}  // namespace exw::amg
