#include "amg/rap.hpp"

#include <algorithm>

#include "assembly/global.hpp"
#include "common/error.hpp"
#include "sparse/prim.hpp"

namespace exw::amg {

namespace {

/// Sparse row accumulator over global coarse columns.
class RowAccumulator {
 public:
  void clear() { entries_.clear(); }

  void add(GlobalIndex col, Real v) { entries_.emplace_back(col, v); }

  /// Merge duplicates (sort-based; rows are short).
  const std::vector<std::pair<GlobalIndex, Real>>& merged() {
    std::sort(entries_.begin(), entries_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t out = 0;
    for (std::size_t k = 0; k < entries_.size();) {
      GlobalIndex col = entries_[k].first;
      Real v = 0;
      while (k < entries_.size() && entries_[k].first == col) {
        v += entries_[k].second;
        ++k;
      }
      entries_[out++] = {col, v};
    }
    entries_.resize(out);
    return entries_;
  }

 private:
  std::vector<std::pair<GlobalIndex, Real>> entries_;
};

}  // namespace

linalg::ParCsr galerkin_rap(const linalg::ParCsr& a, const linalg::ParCsr& p,
                            sparse::SpGemmAlgo algo) {
  EXW_REQUIRE(a.global_cols() == p.global_rows(), "RAP shape mismatch");
  par::Runtime& rt = a.runtime();
  auto& tracer = rt.tracer();
  const int nranks = a.nranks();
  const auto& fine = a.rows();
  const auto& coarse = p.cols();

  // Fetch external P rows for A's offd columns.
  std::vector<std::vector<GlobalIndex>> needed(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    needed[static_cast<std::size_t>(r)] = a.block(r).col_map;
  }
  const auto ext = fetch_external_rows(p, needed);

  // The sort-expand variant pays an extra sort of all partial products
  // (cuSPARSE-style); the hash variant streams them once. Model the
  // difference via the charge below.
  const double sort_penalty =
      algo == sparse::SpGemmAlgo::kSort ? 8.0 : 2.0;

  std::vector<sparse::Coo> owned(static_cast<std::size_t>(nranks));
  std::vector<sparse::Coo> shared(static_cast<std::size_t>(nranks));
  rt.parallel_for_ranks([&](RankId r) {
    const auto& ab = a.block(r);
    const auto& pb = p.block(r);
    const auto& er = ext[static_cast<std::size_t>(r)];
    const GlobalIndex pc0 = coarse.first_row(r);
    RowAccumulator ap_row;
    double products = 0;

    // Emit P(local row li) as (global coarse col, val) via callback.
    auto for_p_row = [&](LocalIndex li, auto&& fn) {
      for (EntryOffset k = pb.diag.row_begin(li); k < pb.diag.row_end(li); ++k) {
        fn(pc0 + pb.diag.cols()[k].value(),
           pb.diag.vals()[k]);
      }
      for (EntryOffset k = pb.offd.row_begin(li); k < pb.offd.row_end(li); ++k) {
        fn(pb.col_map[static_cast<std::size_t>(
               pb.offd.cols()[k])],
           pb.offd.vals()[k]);
      }
    };

    for (LocalIndex i{0}; i < fine.local_size(r); ++i) {
      // AP(i, :) = sum_k A(i, k) P(k, :).
      ap_row.clear();
      for (EntryOffset k = ab.diag.row_begin(i); k < ab.diag.row_end(i); ++k) {
        const LocalIndex kc = ab.diag.cols()[k];
        const Real av = ab.diag.vals()[k];
        for_p_row(kc, [&](GlobalIndex col, Real pv) {
          ap_row.add(col, av * pv);
          products += 1;
        });
      }
      for (EntryOffset k = ab.offd.row_begin(i); k < ab.offd.row_end(i); ++k) {
        const GlobalIndex gk =
            ab.col_map[static_cast<std::size_t>(
                ab.offd.cols()[k])];
        const Real av = ab.offd.vals()[k];
        const std::size_t ei = er.find(gk);
        if (ei == static_cast<std::size_t>(-1)) continue;
        for (std::size_t q = er.row_ptr[ei]; q < er.row_ptr[ei + 1]; ++q) {
          ap_row.add(er.cols[q], av * er.vals[q]);
          products += 1;
        }
      }
      const auto& ap = ap_row.merged();
      if (ap.empty()) continue;
      // Outer product: triples (P(i, jc), AP(i, kc)).
      for_p_row(i, [&](GlobalIndex jc, Real pv) {
        const RankId owner = coarse.rank_of(jc);
        auto& dest = owner == r ? owned[static_cast<std::size_t>(r)]
                                : shared[static_cast<std::size_t>(r)];
        for (const auto& [kc, apv] : ap) {
          dest.push(jc, kc, pv * apv);
          products += 1;
        }
      });
    }
    tracer.kernel(r, 2.0 * products,
                  sort_penalty * products * (sizeof(Real) + sizeof(GlobalIndex)));
  });

  // Reuse the paper's Algorithm 1 for the coarse operator.
  rt.parallel_for_ranks([&](RankId r) {
    owned[static_cast<std::size_t>(r)].normalize();
    shared[static_cast<std::size_t>(r)].normalize();
  });
  return assembly::assemble_matrix(rt, coarse, coarse, owned, shared);
}

linalg::ParCsr par_matmat(const linalg::ParCsr& a, const linalg::ParCsr& b,
                          sparse::SpGemmAlgo algo) {
  EXW_REQUIRE(a.global_cols() == b.global_rows(), "matmat shape mismatch");
  par::Runtime& rt = a.runtime();
  auto& tracer = rt.tracer();
  const int nranks = a.nranks();
  const auto& mid = b.rows();
  const auto& out_cols = b.cols();

  std::vector<std::vector<GlobalIndex>> needed(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    needed[static_cast<std::size_t>(r)] = a.block(r).col_map;
  }
  const auto ext = fetch_external_rows(b, needed);
  const double sort_penalty = algo == sparse::SpGemmAlgo::kSort ? 8.0 : 2.0;

  std::vector<linalg::RankBlock> blocks(static_cast<std::size_t>(nranks));
  rt.parallel_for_ranks([&](RankId r) {
    const auto& ab = a.block(r);
    const auto& bb = b.block(r);
    const auto& er = ext[static_cast<std::size_t>(r)];
    const GlobalIndex row0 = a.rows().first_row(r);
    const GlobalIndex bc0 = out_cols.first_row(r);
    RowAccumulator acc;
    sparse::Coo coo;
    double products = 0;
    for (LocalIndex i{0}; i < a.rows().local_size(r); ++i) {
      acc.clear();
      for (EntryOffset k = ab.diag.row_begin(i); k < ab.diag.row_end(i); ++k) {
        const LocalIndex kc = ab.diag.cols()[k];
        const Real av = ab.diag.vals()[k];
        // kc is owned by r in b's row partition when partitions align;
        // they do by construction (a.cols() == b.rows()).
        for (EntryOffset q = bb.diag.row_begin(kc); q < bb.diag.row_end(kc); ++q) {
          acc.add(bc0 + bb.diag.cols()[q].value(),
                  av * bb.diag.vals()[q]);
          products += 1;
        }
        for (EntryOffset q = bb.offd.row_begin(kc); q < bb.offd.row_end(kc); ++q) {
          acc.add(bb.col_map[static_cast<std::size_t>(
                      bb.offd.cols()[q])],
                  av * bb.offd.vals()[q]);
          products += 1;
        }
      }
      for (EntryOffset k = ab.offd.row_begin(i); k < ab.offd.row_end(i); ++k) {
        const GlobalIndex gk =
            ab.col_map[static_cast<std::size_t>(
                ab.offd.cols()[k])];
        const Real av = ab.offd.vals()[k];
        const std::size_t ei = er.find(gk);
        if (ei == static_cast<std::size_t>(-1)) continue;
        for (std::size_t q = er.row_ptr[ei]; q < er.row_ptr[ei + 1]; ++q) {
          acc.add(er.cols[q], av * er.vals[q]);
          products += 1;
        }
      }
      for (const auto& [col, v] : acc.merged()) {
        coo.push(row0 + i.value(), col, v);
      }
    }
    tracer.kernel(r, 2.0 * products,
                  sort_penalty * products * (sizeof(Real) + sizeof(GlobalIndex)));
    blocks[static_cast<std::size_t>(r)] =
        assembly::split_diag_offd(coo, a.rows(), out_cols, r);
  });
  EXW_REQUIRE(mid.global_size() == a.global_cols(), "matmat partitions");
  return linalg::ParCsr(rt, a.rows(), out_cols, std::move(blocks));
}

}  // namespace exw::amg
