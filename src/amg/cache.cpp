#include "amg/cache.hpp"

#include <algorithm>
#include <utility>

#include "amg/charges.hpp"
#include "common/error.hpp"
#include "par/runtime.hpp"
#include "perf/purity.hpp"

namespace exw::amg {

std::unique_ptr<LevelReplay> freeze_level_replay(
    par::Runtime& rt, RapRecord&& record, const par::RowPartition& coarse) {
  auto lr = std::make_unique<LevelReplay>();
  lr->record = std::move(record);

  const auto nranks = static_cast<std::size_t>(rt.nranks());
  EXW_REQUIRE(lr->record.ranks.size() == nranks &&
                  lr->record.owned.size() == nranks &&
                  lr->record.shared.size() == nranks,
              "amg hierarchy cache: RAP record does not cover all ranks");

  // RAP is matrix-only; AssemblyPlan views carry an RHS half too, so park
  // permanent zero vectors / empty sparse adds alongside the triples.
  lr->rhs_owned.resize(nranks);
  lr->rhs_shared.resize(nranks);
  lr->views.resize(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    lr->rhs_owned[r].assign(
        static_cast<std::size_t>(coarse.local_size(RankId{checked_narrow<int>(r)})), 0.0);
    lr->views[r] = assembly::SystemView{&lr->record.owned[r],
                                        &lr->record.shared[r],
                                        &lr->rhs_owned[r], &lr->rhs_shared[r]};
  }
  lr->scratch.resize(nranks);

  // One cold structural pass over the frozen coarse triples (charged as
  // such by AssemblyPlan::build) — paid once per rebuild, never on refresh.
  lr->plan = assembly::AssemblyPlan::build(rt, coarse, coarse, lr->views);
  return lr;
}

EXW_WARM_FN
void replay_level(par::Runtime& rt, LevelReplay& lr,
                  const linalg::ParCsr& fine_a, linalg::ParCsr& coarse_a) {
  EXW_PURITY_REGION("amg-replay-level");
  perf::Tracer& tracer = rt.tracer();
  rt.parallel_for_ranks([&](RankId r) {
    const auto ri = static_cast<std::size_t>(r);
    const RapRecord::Rank& rec = lr.record.ranks[ri];
    const linalg::RankBlock& blk = fine_a.block(r);
    EXW_REQUIRE(blk.diag.nnz() == rec.a_diag_nnz &&
                    blk.offd.nnz() == rec.a_offd_nnz,
                "amg hierarchy plan is stale: fine-level structure changed");

    LevelReplay::Scratch& sc = lr.scratch[ri];
    // Gather the fine values into the frozen [diag | offd] slot layout.
    {
      // Both resizes below are no-ops after the first replay.
      EXW_PURITY_ALLOW("first-refill scratch priming");
      sc.a_flat.resize(rec.a_diag_nnz + rec.a_offd_nnz);
      sc.ap_vals.resize(rec.ap.outputs());
    }
    const auto dspan = blk.diag.vals().raw();
    const auto ospan = blk.offd.vals().raw();
    std::copy(dspan.begin(), dspan.end(), sc.a_flat.begin());
    std::copy(ospan.begin(), ospan.end(),
              sc.a_flat.begin() + static_cast<std::ptrdiff_t>(rec.a_diag_nnz));
    detail::charge_value_stream(tracer, r, sc.a_flat.size());

    // AP, then the coarse triples, through the frozen term plans.
    rec.ap.replay(sc.a_flat, rec.p_flat, sc.ap_vals);
    detail::charge_replay(tracer, r, rec.ap.flops(), rec.ap.outputs());

    sparse::Coo& ow = lr.record.owned[ri];
    sparse::Coo& sh = lr.record.shared[ri];
    rec.owned.replay(rec.p_flat, sc.ap_vals, ow.vals);
    rec.shared.replay(rec.p_flat, sc.ap_vals, sh.vals);
    detail::charge_replay(tracer, r, rec.owned.flops() + rec.shared.flops(),
                          rec.owned.outputs() + rec.shared.outputs());
  });

  // Value-only global assembly of the coarse operator (bitwise equal to
  // the cold sort/reduce the rebuild used).
  lr.plan.refill_matrix(rt, lr.views, coarse_a);
}

void HierarchyCache::rebuild(const linalg::ParCsr& a, const AmgConfig& cfg,
                             std::uint64_t generation, bool freeze) {
  hierarchy_ = std::make_unique<AmgHierarchy>(a, cfg, freeze);
  cfg_ = cfg;
  generation_ = generation;
  valid_ = true;
  ++rebuilds_;
  solves_since_rebuild_ = 0;
  baseline_iters_ = -1;
  last_iters_ = -1;
}

EXW_WARM_FN
void HierarchyCache::refresh(const linalg::ParCsr& a) {
  EXW_REQUIRE(valid_ && hierarchy_ != nullptr,
              "hierarchy cache: refresh without a valid rebuild");
  hierarchy_->refresh_values(a);
  ++refreshes_;
}

void HierarchyCache::note_solve(int iterations) {
  ++solves_since_rebuild_;
  last_iters_ = iterations;
  if (baseline_iters_ < 0) {
    baseline_iters_ = iterations;  // first solve after a rebuild
  }
}

bool HierarchyCache::stagnating(double ratio) const {
  if (baseline_iters_ < 0 || last_iters_ < 0) {
    return false;
  }
  return static_cast<double>(last_iters_) >
         ratio * static_cast<double>(std::max(baseline_iters_, 1));
}

}  // namespace exw::amg
