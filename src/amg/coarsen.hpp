#pragma once
/// \file coarsen.hpp
/// PMIS coarsening (paper §4.1).
///
/// "BoomerAMG currently only provides the parallel maximal independent
/// set (PMIS) coarsening on GPUs, which is modified from Luby's algorithm
/// for finding maximal independent sets using random numbers. The process
/// of selecting coarse points in this algorithm is massively parallel."
///
/// Each point gets the measure w(i) = |{j : S_ji strong}| + rand(i); in
/// every round, undecided points that are local maxima of w over their
/// undecided strong neighborhood (symmetrized S) become C-points, and
/// undecided points that strongly depend on a new C-point become
/// F-points. Random values are counter-based hashes of the *global* row
/// id, so the coarse grid is independent of the rank count (cuRAND's role
/// in the paper, made reproducible).
///
/// The rank-sequential driver reads neighbor state from the global
/// arrays directly and charges one (w, cf) boundary exchange per round —
/// the values are identical to what owner-pushed halo messages would
/// deliver.

#include <vector>

#include "amg/soc.hpp"
#include "common/types.hpp"
#include "linalg/parcsr.hpp"
#include "par/partition.hpp"

namespace exw::amg {

enum class CF : std::int8_t { kFine = -1, kUndecided = 0, kCoarse = 1 };

struct Coarsening {
  std::vector<std::vector<CF>> cf;  ///< [rank][local row]
  par::RowPartition coarse_rows;    ///< coarse DoF ownership
  /// [rank][local row] -> global coarse id (kInvalidGlobal for F points).
  std::vector<std::vector<GlobalIndex>> coarse_id;
  int rounds = 0;  ///< PMIS rounds to convergence

  GlobalIndex coarse_size() const { return coarse_rows.global_size(); }
  CF cf_of(const par::RowPartition& rows, GlobalIndex g) const {
    const RankId r = rows.rank_of(g);
    return cf[static_cast<std::size_t>(r)][static_cast<std::size_t>(rows.to_local(r, g))];
  }
  GlobalIndex coarse_of(const par::RowPartition& rows, GlobalIndex g) const {
    const RankId r = rows.rank_of(g);
    return coarse_id[static_cast<std::size_t>(r)][static_cast<std::size_t>(rows.to_local(r, g))];
  }
};

/// Run PMIS on S(A).
Coarsening pmis(const linalg::ParCsr& a, const Strength& s,
                std::uint64_t seed);

}  // namespace exw::amg
