#include "amg/interp.hpp"

#include <algorithm>
#include <cmath>

#include "assembly/global.hpp"
#include "common/error.hpp"

namespace exw::amg {

namespace {

/// Charge one halo exchange of per-boundary-column (cf, coarse id) data.
void charge_cf_exchange(const linalg::ParCsr& a) {
  auto& tracer = a.runtime().tracer();
  for (RankId r{0}; r.value() < a.nranks(); ++r) {
    const auto n = static_cast<double>(a.block(r).col_map.size());
    if (n > 0) {
      tracer.kernel(r, n, n * (sizeof(GlobalIndex) + 1.0));
    }
    for (const auto& recv : a.comm().recvs[static_cast<std::size_t>(r)]) {
      tracer.message(recv.src, r,
                     static_cast<double>(recv.count.value()) * (sizeof(GlobalIndex) + 1.0));
    }
  }
}

/// Visit every off-diagonal entry of row i on rank r as
/// (global col, value, strong?).
template <typename Fn>
void for_each_offdiag(const linalg::ParCsr& a, const Strength& s, RankId r,
                      LocalIndex i, Fn&& fn) {
  const auto& b = a.block(r);
  const GlobalIndex col0 = a.cols().first_row(r);
  for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
    const LocalIndex c = b.diag.cols()[k];
    if (c == i) continue;
    fn(col0 + c.value(), b.diag.vals()[k],
       s.strong_diag(r, static_cast<std::size_t>(k)));
  }
  for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
    fn(b.col_map[static_cast<std::size_t>(
           b.offd.cols()[k])],
       b.offd.vals()[k],
       s.strong_offd(r, static_cast<std::size_t>(k)));
  }
}

linalg::ParCsr p_from_rank_coos(par::Runtime& rt,
                                const par::RowPartition& fine,
                                const par::RowPartition& coarse,
                                std::vector<sparse::Coo> coos) {
  std::vector<linalg::RankBlock> blocks(coos.size());
  const RankId nblocks{checked_narrow<int>(coos.size())};
  for (RankId r{0}; r < nblocks; ++r) {
    auto& coo = coos[static_cast<std::size_t>(r)];
    coo.normalize();
    blocks[static_cast<std::size_t>(r)] =
        assembly::split_diag_offd(coo, fine, coarse, r);
  }
  return linalg::ParCsr(rt, fine, coarse, std::move(blocks));
}

/// Classical direct and BAMG-direct interpolation (one-pass, row-local).
linalg::ParCsr build_direct(const linalg::ParCsr& a, const Strength& s,
                            const Coarsening& c, bool bamg) {
  const int nranks = a.nranks();
  const auto& rows = a.rows();
  auto& tracer = a.runtime().tracer();
  charge_cf_exchange(a);

  std::vector<sparse::Coo> coos(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& b = a.block(r);
    const GlobalIndex row0 = rows.first_row(r);
    auto& coo = coos[static_cast<std::size_t>(r)];
    const auto& diag_vals = b.diag.diagonal();
    for (LocalIndex i{0}; i < rows.local_size(r); ++i) {
      const GlobalIndex gi = row0 + i.value();
      if (c.cf[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] ==
          CF::kCoarse) {
        coo.push(gi, c.coarse_id[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)], 1.0);
        continue;
      }
      // Scan the row once, classifying neighbors.
      Real sum_all = 0, sum_strong_c = 0, sum_strong_f = 0, sum_weak = 0;
      GlobalIndex n_strong_c{0};
      for_each_offdiag(a, s, r, i, [&](GlobalIndex g, Real v, bool strong) {
        sum_all += v;
        const bool is_c = c.cf_of(rows, g) == CF::kCoarse;
        if (strong && is_c) {
          sum_strong_c += v;
          n_strong_c += 1;
        } else if (strong) {
          sum_strong_f += v;
        } else {
          sum_weak += v;
        }
      });
      if (n_strong_c == GlobalIndex{0}) {
        continue;  // PMIS F-point with no C-neighbor: empty row (§4.1)
      }
      const Real aii = diag_vals[static_cast<std::size_t>(i)];
      if (bamg) {
        // Eq. (2): distribute strong-F couplings uniformly over the strong
        // C set; lump weak couplings into the diagonal.
        const Real denom = aii + sum_weak;
        if (denom == 0.0) continue;
        const Real spread = sum_strong_f / static_cast<Real>(n_strong_c.value());
        for_each_offdiag(a, s, r, i, [&](GlobalIndex g, Real v, bool strong) {
          if (strong && c.cf_of(rows, g) == CF::kCoarse) {
            coo.push(gi, c.coarse_of(rows, g), -(v + spread) / denom);
          }
        });
      } else {
        if (aii == 0.0 || sum_strong_c == 0.0) continue;
        const Real alpha = sum_all / sum_strong_c;
        for_each_offdiag(a, s, r, i, [&](GlobalIndex g, Real v, bool strong) {
          if (strong && c.cf_of(rows, g) == CF::kCoarse) {
            coo.push(gi, c.coarse_of(rows, g), -alpha * v / aii);
          }
        });
      }
    }
    const auto nnz = static_cast<double>(b.diag.nnz() + b.offd.nnz());
    tracer.kernel(r, 4.0 * nnz, 2.0 * nnz * (sizeof(Real) + sizeof(LocalIndex)));
  }
  return p_from_rank_coos(a.runtime(), rows, c.coarse_rows, std::move(coos));
}

/// Matrix-matrix extended interpolation ("MM-ext", optionally "+i").
linalg::ParCsr build_mm_ext(const linalg::ParCsr& a, const Strength& s,
                            const Coarsening& c, bool plus_i) {
  const int nranks = a.nranks();
  const auto& rows = a.rows();
  auto& tracer = a.runtime().tracer();
  charge_cf_exchange(a);

  // Per-row beta (sum of strong-C couplings) and gamma (sum of weak
  // couplings), and the scaled FC operator Y = D_beta^-1 A^s_FC as a
  // distributed matrix over the *fine* row partition (C rows empty).
  std::vector<RealVector> beta(static_cast<std::size_t>(nranks));
  std::vector<RealVector> gamma(static_cast<std::size_t>(nranks));
  std::vector<sparse::Coo> y_coos(static_cast<std::size_t>(nranks));
  // Strong F-F couplings per row: (global col, value) lists.
  std::vector<std::vector<std::pair<GlobalIndex, Real>>> ff(
      static_cast<std::size_t>(nranks));
  std::vector<std::vector<std::size_t>> ff_ptr(static_cast<std::size_t>(nranks));

  for (RankId r{0}; r.value() < nranks; ++r) {
    const GlobalIndex row0 = rows.first_row(r);
    const auto nlocal = static_cast<std::size_t>(rows.local_size(r));
    beta[static_cast<std::size_t>(r)].assign(nlocal, 0.0);
    gamma[static_cast<std::size_t>(r)].assign(nlocal, 0.0);
    ff_ptr[static_cast<std::size_t>(r)].assign(nlocal + 1, 0);
    auto& ffr = ff[static_cast<std::size_t>(r)];
    for (LocalIndex i{0}; i < rows.local_size(r); ++i) {
      const bool is_f =
          c.cf[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] !=
          CF::kCoarse;
      if (is_f) {
        for_each_offdiag(a, s, r, i, [&](GlobalIndex g, Real v, bool strong) {
          const bool is_c = c.cf_of(rows, g) == CF::kCoarse;
          if (!strong) {
            gamma[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] += v;
          } else if (is_c) {
            beta[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] += v;
          } else {
            ffr.emplace_back(g, v);
          }
        });
      }
      ff_ptr[static_cast<std::size_t>(r)][static_cast<std::size_t>(i) + 1] = ffr.size();
    }
    // Y rows: strong-C entries scaled by 1/beta.
    auto& yc = y_coos[static_cast<std::size_t>(r)];
    for (LocalIndex i{0}; i < rows.local_size(r); ++i) {
      const GlobalIndex gi = row0 + i.value();
      if (c.cf[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] ==
          CF::kCoarse) {
        continue;
      }
      const Real bi =
          beta[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      if (bi == 0.0) continue;
      for_each_offdiag(a, s, r, i, [&](GlobalIndex g, Real v, bool strong) {
        if (strong && c.cf_of(rows, g) == CF::kCoarse) {
          yc.push(gi, c.coarse_of(rows, g), v / bi);
        }
      });
    }
    const auto nnz = static_cast<double>(a.block(r).diag.nnz() +
                                         a.block(r).offd.nnz());
    tracer.kernel(r, 4.0 * nnz, 2.0 * nnz * (sizeof(Real) + sizeof(LocalIndex)));
  }
  linalg::ParCsr y = p_from_rank_coos(a.runtime(), rows, c.coarse_rows,
                                      std::move(y_coos));

  // Distance-2 reach: fetch Y rows of external strong-F neighbors.
  std::vector<std::vector<GlobalIndex>> needed(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    for (const auto& [g, v] : ff[static_cast<std::size_t>(r)]) {
      if (!rows.owns(r, g)) {
        needed[static_cast<std::size_t>(r)].push_back(g);
      }
    }
  }
  const auto ext = fetch_external_rows(y, needed);

  // Row helper: emit Y(f, :) as (global coarse col, val) pairs.
  auto emit_y_row = [&](RankId r, GlobalIndex gf,
                        std::vector<std::pair<GlobalIndex, Real>>& out,
                        Real scale) {
    if (rows.owns(r, gf)) {
      const RankId owner = r;
      const auto li = rows.to_local(owner, gf);
      const auto& yb = y.block(owner);
      const GlobalIndex c0 = c.coarse_rows.first_row(owner);
      for (EntryOffset k = yb.diag.row_begin(li); k < yb.diag.row_end(li); ++k) {
        out.emplace_back(c0 + yb.diag.cols()[k].value(),
                         scale * yb.diag.vals()[k]);
      }
      for (EntryOffset k = yb.offd.row_begin(li); k < yb.offd.row_end(li); ++k) {
        out.emplace_back(
            yb.col_map[static_cast<std::size_t>(
                yb.offd.cols()[k])],
            scale * yb.offd.vals()[k]);
      }
    } else {
      const auto& e = ext[static_cast<std::size_t>(r)];
      const std::size_t idx = e.find(gf);
      if (idx == static_cast<std::size_t>(-1)) return;
      for (std::size_t k = e.row_ptr[idx]; k < e.row_ptr[idx + 1]; ++k) {
        out.emplace_back(e.cols[k], scale * e.vals[k]);
      }
    }
  };

  std::vector<sparse::Coo> coos(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    const GlobalIndex row0 = rows.first_row(r);
    const auto& diag_vals = a.block(r).diag.diagonal();
    auto& coo = coos[static_cast<std::size_t>(r)];
    std::vector<std::pair<GlobalIndex, Real>> acc;
    double flops = 0;
    for (LocalIndex i{0}; i < rows.local_size(r); ++i) {
      const GlobalIndex gi = row0 + i.value();
      if (c.cf[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] ==
          CF::kCoarse) {
        coo.push(gi, c.coarse_id[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)], 1.0);
        continue;
      }
      acc.clear();
      // (A^s_FF + D_beta) row i applied to Y: strong-F neighbors' rows
      // plus the diagonal beta_i * Y(i, :).
      const auto p0 = ff_ptr[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      const auto p1 = ff_ptr[static_cast<std::size_t>(r)][static_cast<std::size_t>(i) + 1];
      for (std::size_t k = p0; k < p1; ++k) {
        const auto& [gf, v] = ff[static_cast<std::size_t>(r)][k];
        emit_y_row(r, gf, acc, v);
      }
      const Real bi = beta[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      if (bi != 0.0) {
        emit_y_row(r, gi, acc, bi);
      }
      if (acc.empty()) continue;
      flops += 2.0 * static_cast<double>(acc.size());
      // Combine duplicates and scale by -(a_ii + gamma_i)^-1.
      std::sort(acc.begin(), acc.end(),
                [](const auto& x, const auto& z) { return x.first < z.first; });
      const Real denom = diag_vals[static_cast<std::size_t>(i)] +
                         gamma[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      if (denom == 0.0) continue;
      const Real scale = -1.0 / denom;
      std::size_t k = 0;
      Real row_sum = 0;
      std::vector<std::pair<GlobalIndex, Real>> merged;
      while (k < acc.size()) {
        GlobalIndex col = acc[k].first;
        Real v = 0;
        while (k < acc.size() && acc[k].first == col) {
          v += acc[k].second;
          ++k;
        }
        merged.emplace_back(col, scale * v);
        row_sum += scale * v;
      }
      // "+i": rescale so constants interpolate exactly.
      const Real fix = (plus_i && std::abs(row_sum) > 1e-12) ? 1.0 / row_sum : 1.0;
      for (const auto& [col, v] : merged) {
        coo.push(gi, col, v * fix);
      }
    }
    tracer.kernel(r, flops, flops * (sizeof(Real) + sizeof(GlobalIndex)));
  }
  return p_from_rank_coos(a.runtime(), rows, c.coarse_rows, std::move(coos));
}

}  // namespace

linalg::ParCsr build_interpolation(const linalg::ParCsr& a, const Strength& s,
                                   const Coarsening& c, const AmgConfig& cfg) {
  linalg::ParCsr p;
  switch (cfg.interp) {
    case InterpType::kDirect:
      p = build_direct(a, s, c, /*bamg=*/false);
      break;
    case InterpType::kBamg:
      p = build_direct(a, s, c, /*bamg=*/true);
      break;
    case InterpType::kMmExt:
      p = build_mm_ext(a, s, c, /*plus_i=*/false);
      break;
    case InterpType::kMmExtI:
      p = build_mm_ext(a, s, c, /*plus_i=*/true);
      break;
  }
  truncate_interpolation(p, cfg.pmax, cfg.trunc_factor);
  return p;
}

void truncate_interpolation(linalg::ParCsr& p, int pmax, Real trunc_factor) {
  if (pmax <= 0 && trunc_factor <= 0) return;
  auto& tracer = p.runtime().tracer();
  for (RankId r{0}; r.value() < p.nranks(); ++r) {
    auto& b = p.block_mut(r);
    // Work on the concatenated (diag, offd) row with a shared budget.
    sparse::Csr new_diag(b.diag.nrows(), b.diag.ncols());
    sparse::Csr new_offd(b.offd.nrows(), b.offd.ncols());
    std::vector<std::pair<Real, std::pair<int, LocalIndex>>> entries;
    for (LocalIndex i{0}; i < b.diag.nrows(); ++i) {
      entries.clear();
      Real row_sum = 0, max_abs = 0;
      for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
        const Real v = b.diag.vals()[k];
        entries.push_back({v, {0, b.diag.cols()[k]}});
        row_sum += v;
        max_abs = std::max(max_abs, std::abs(v));
      }
      for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
        const Real v = b.offd.vals()[k];
        entries.push_back({v, {1, b.offd.cols()[k]}});
        row_sum += v;
        max_abs = std::max(max_abs, std::abs(v));
      }
      // Keep the pmax largest |entries| above the drop threshold.
      std::sort(entries.begin(), entries.end(),
                [](const auto& x, const auto& z) {
                  return std::abs(x.first) > std::abs(z.first);
                });
      std::size_t keep = entries.size();
      if (pmax > 0) keep = std::min<std::size_t>(keep, static_cast<std::size_t>(pmax));
      while (keep > 0 &&
             std::abs(entries[keep - 1].first) < trunc_factor * max_abs) {
        --keep;
      }
      Real kept_sum = 0;
      for (std::size_t k = 0; k < keep; ++k) kept_sum += entries[k].first;
      const Real fix =
          (std::abs(kept_sum) > 1e-300 && keep < entries.size())
              ? row_sum / kept_sum
              : 1.0;
      // Re-emit in ascending column order per block.
      std::sort(entries.begin(), entries.begin() + static_cast<std::ptrdiff_t>(keep),
                [](const auto& x, const auto& z) { return x.second < z.second; });
      for (std::size_t k = 0; k < keep; ++k) {
        const auto& [v, where] = entries[k];
        if (where.first == 0) {
          new_diag.cols_vec().push_back(where.second);
          new_diag.vals_vec().push_back(v * fix);
        } else {
          new_offd.cols_vec().push_back(where.second);
          new_offd.vals_vec().push_back(v * fix);
        }
      }
      new_diag.row_ptr_mut()[static_cast<std::size_t>(i) + 1] =
          EntryOffset{new_diag.cols_vec().size()};
      new_offd.row_ptr_mut()[static_cast<std::size_t>(i) + 1] =
          EntryOffset{new_offd.cols_vec().size()};
    }
    const auto nnz = static_cast<double>(b.diag.nnz() + b.offd.nnz());
    tracer.kernel(r, 4.0 * nnz, 2.0 * nnz * sizeof(Real));
    b.diag = std::move(new_diag);
    b.offd = std::move(new_offd);
    // Note: col_map may now contain unreferenced columns; they only cost
    // a few halo values and keep the comm package valid.
  }
}

}  // namespace exw::amg
