#pragma once
/// \file hierarchy.hpp
/// BoomerAMG-style multilevel hierarchy and V-cycle (paper §4).
///
/// Setup builds "a multilevel hierarchy that consists of linear systems
/// with exponentially decreasing sizes on coarser levels": SoC -> PMIS ->
/// interpolation -> Galerkin RAP per level. On the first `agg_levels`
/// levels, aggressive coarsening is applied as two back-to-back
/// coarsening rounds whose interpolations are combined as P = P1 * P2
/// (two-stage interpolation; this realizes the distance-2 coarsening rate
/// of the paper's S^2 + S construction — DESIGN.md records the
/// equivalence). The coarsest system is solved directly.
///
/// The pressure-Poisson configuration of §4.2 — aggressive PMIS on the
/// first two levels, MM-based second-stage interpolation, two-stage GS
/// smoothing inside a V-cycle — is the default AmgConfig.

#include <memory>
#include <string>
#include <vector>

#include "amg/config.hpp"
#include "amg/smoothers.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "sparse/dense.hpp"

namespace exw::amg {

struct AmgLevel {
  linalg::ParCsr a;
  linalg::ParCsr p;  ///< to the next coarser level (unused on coarsest)
  std::unique_ptr<Smoother> smoother;
  // Work vectors (allocated once at setup).
  std::unique_ptr<linalg::ParVector> x, b, r;
  bool has_p = false;
};

class AmgHierarchy {
 public:
  /// Build the hierarchy for `a` (setup phase; charge via an enclosing
  /// PhaseScope, e.g. "precond_setup").
  AmgHierarchy(const linalg::ParCsr& a, AmgConfig cfg);

  /// One V-cycle for A x = b (x is both initial guess and result).
  void vcycle(const linalg::ParVector& b, linalg::ParVector& x);

  int num_levels() const { return checked_narrow<int>(levels_.size()); }
  const AmgLevel& level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }
  const AmgConfig& config() const { return cfg_; }

  /// Sum of rows over levels / fine rows.
  double grid_complexity() const;
  /// Sum of nnz over levels / fine nnz.
  double operator_complexity() const;
  /// One line per level: rows, nnz, avg row size.
  std::string describe() const;

 private:
  void setup(const linalg::ParCsr& a);
  void cycle_level(std::size_t l, const linalg::ParVector& b,
                   linalg::ParVector& x);
  /// Gather + dense-LU solve on the coarsest level.
  void coarse_solve(const linalg::ParVector& b, linalg::ParVector& x);

  AmgConfig cfg_;
  std::vector<AmgLevel> levels_;
  sparse::DenseLu coarse_lu_;
};

}  // namespace exw::amg
