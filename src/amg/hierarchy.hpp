#pragma once
/// \file hierarchy.hpp
/// BoomerAMG-style multilevel hierarchy and V-cycle (paper §4).
///
/// Setup builds "a multilevel hierarchy that consists of linear systems
/// with exponentially decreasing sizes on coarser levels": SoC -> PMIS ->
/// interpolation -> Galerkin RAP per level. On the first `agg_levels`
/// levels, aggressive coarsening is applied as two back-to-back
/// coarsening rounds whose interpolations are combined as P = P1 * P2
/// (two-stage interpolation; this realizes the distance-2 coarsening rate
/// of the paper's S^2 + S construction — DESIGN.md records the
/// equivalence). The coarsest system is solved directly.
///
/// The pressure-Poisson configuration of §4.2 — aggressive PMIS on the
/// first two levels, MM-based second-stage interpolation, two-stage GS
/// smoothing inside a V-cycle — is the default AmgConfig.

#include <memory>
#include <string>
#include <vector>

#include "amg/config.hpp"
#include "amg/smoothers.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "sparse/dense.hpp"

namespace exw::amg {

struct LevelReplay;  // amg/cache.hpp — frozen value-replay state

struct AmgLevel {
  linalg::ParCsr a;
  linalg::ParCsr p;  ///< to the next coarser level (unused on coarsest)
  std::unique_ptr<Smoother> smoother;
  // Work vectors (allocated once at setup).
  std::unique_ptr<linalg::ParVector> x, b, r;
  bool has_p = false;
};

class AmgHierarchy {
 public:
  /// Build the hierarchy for `a` (setup phase; charge via an enclosing
  /// PhaseScope, e.g. "precond_setup"). With `freeze_replay`, setup
  /// additionally freezes per-transition value-replay plans (amg/cache.hpp)
  /// so refresh_values() can refill every level from new fine values.
  AmgHierarchy(const linalg::ParCsr& a, AmgConfig cfg,
               bool freeze_replay = false);
  ~AmgHierarchy();  // out of line: LevelReplay is incomplete here

  /// True when setup froze the replay plans (refresh_values available).
  bool frozen() const { return frozen_; }

  /// Refill every level's values in place from new values of `a`, which
  /// must have the exact structure setup saw: level-0 values are copied,
  /// each coarse operator is refilled by replaying the frozen Galerkin
  /// product plans against the frozen interpolation, and the smoothers
  /// re-split. No graph traversal, no hashing, no steady-state
  /// allocation; bitwise-identical to rebuilding against the frozen
  /// coarsening. The coarse direct solver keeps its factorization — the
  /// O(n^3) charge is rebuild-only; the resulting (slight, bounded)
  /// coarse-solve lag is governed by the drift policy in cfd::SimConfig.
  /// Throws exw::Error if the hierarchy is not frozen or the structure
  /// changed.
  void refresh_values(const linalg::ParCsr& a);

  /// One V-cycle for A x = b (x is both initial guess and result).
  void vcycle(const linalg::ParVector& b, linalg::ParVector& x);

  int num_levels() const { return checked_narrow<int>(levels_.size()); }
  const AmgLevel& level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }
  const AmgConfig& config() const { return cfg_; }

  /// Sum of rows over levels / fine rows.
  double grid_complexity() const;
  /// Sum of nnz over levels / fine nnz.
  double operator_complexity() const;
  /// One line per level: rows, nnz, avg row size.
  std::string describe() const;

 private:
  void setup(const linalg::ParCsr& a);
  void cycle_level(std::size_t l, const linalg::ParVector& b,
                   linalg::ParVector& x);
  /// Gather + dense-LU solve on the coarsest level.
  void coarse_solve(const linalg::ParVector& b, linalg::ParVector& x);

  AmgConfig cfg_;
  std::vector<AmgLevel> levels_;
  sparse::DenseLu coarse_lu_;
  /// Frozen replay plans, one per level transition (empty unless frozen).
  std::vector<std::unique_ptr<LevelReplay>> replays_;
  bool frozen_ = false;
};

}  // namespace exw::amg
