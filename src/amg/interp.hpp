#pragma once
/// \file interp.hpp
/// Interpolation operators (paper §4.1).
///
/// * kDirect — classical direct interpolation: the interpolatory set of a
///   fine point i is a subset of its neighbors, weights determined by the
///   i-th equation alone ("straightforward to port to GPUs").
/// * kBamg — the BAMG-direct closed form of Eq. (2) for elliptic problems
///   whose near null space is the constant vector. We resolve the paper's
///   notation so that the closed form preserves constants *exactly* on
///   zero-row-sum rows: beta_i sums the strong F-neighbors; weak
///   neighbors (C and F) are lumped into the denominator.
/// * kMmExt — the matrix-matrix extended interpolation:
///       W = -[(D_FF + D_gamma)^-1 (A^s_FF + D_beta)] [D_beta^-1 A^s_FC]
///   with D_beta = diag(A^s_FC 1) and D_gamma = diag(A^w_FF 1 + A^w_FC 1),
///   implemented with the distributed external-row fetch + local sparse
///   products — a distance-2 operator that repairs PMIS F-points without
///   C-neighbors.
/// * kMmExtI — MM-ext followed by exact row-sum normalization (the "+i"
///   improvement to constant interpolation; simplification of the
///   original extended+i recorded in DESIGN.md).
///
/// P has fine rows / coarse columns; C-point rows are identity. Rows are
/// truncated to `pmax` largest-magnitude entries with row-sum-preserving
/// rescaling.

#include "amg/coarsen.hpp"
#include "amg/config.hpp"
#include "amg/soc.hpp"
#include "linalg/parcsr.hpp"

namespace exw::amg {

/// Build P for the given coarsening.
linalg::ParCsr build_interpolation(const linalg::ParCsr& a, const Strength& s,
                                   const Coarsening& c, const AmgConfig& cfg);

/// Truncate every row of P to `pmax` largest |entries| (and drop entries
/// below trunc_factor * max|row|), rescaling to preserve the row sum.
void truncate_interpolation(linalg::ParCsr& p, int pmax, Real trunc_factor);

}  // namespace exw::amg
